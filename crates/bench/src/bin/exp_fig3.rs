//! Figure 3: connected components and spanning trees on the 15-node,
//! 17-edge, 14-robot worked example.
//!
//! Fig. 3(a) shows the placement, 3(b) the two components (green CG¹ and
//! red CG², computed identically by every member robot), 3(c) the two
//! spanning trees rooted at the smallest-ID multiplicity nodes.

use dispersion_bench::{banner, Table};
use dispersion_core::worked_example;

fn main() {
    banner(
        "F3",
        "Figure 3 (Section V worked example)",
        "14 robots on a 15-node, 17-edge G_r form components CG¹, CG² with\n\
         spanning trees rooted at their smallest-ID multiplicity nodes",
    );

    let ex = worked_example::build();
    println!(
        "G_r: {} nodes, {} edges; {} robots on {} occupied nodes\n",
        ex.graph.node_count(),
        ex.graph.edge_count(),
        ex.config.robot_count(),
        ex.config.occupied_count()
    );

    let comps = ex.components();
    assert_eq!(comps.len(), 2, "the figure shows exactly two components");

    let mut t = Table::new(["component", "nodes", "robots", "multiplicity node", "tree root"]);
    for (label, comp) in [("CG¹ (green)", ex.green()), ("CG² (red)", ex.red())] {
        let tree = ex.tree_of(&comp);
        let robots: Vec<String> = comp
            .iter()
            .flat_map(|n| n.robots.iter().map(|r| r.get().to_string()))
            .collect();
        t.row([
            label.to_string(),
            comp.len().to_string(),
            robots.join(","),
            comp.root().expect("has multiplicity").to_string(),
            tree.root().to_string(),
        ]);
    }
    println!("{t}");
    println!();

    println!("spanning trees (parent ← child edges, DFS order):");
    for (label, comp) in [("ST¹", ex.green()), ("ST²", ex.red())] {
        let tree = ex.tree_of(&comp);
        let edges: Vec<String> = tree
            .preorder()
            .iter()
            .filter_map(|&id| tree.parent(id).map(|p| format!("{p}→{id}")))
            .collect();
        println!("  {label} (root {}): {}", tree.root(), edges.join("  "));
        tree.check_invariants(&comp);
    }
    println!();
    println!(
        "result: both components are reconstructed identically by every\n\
         member robot (Lemma 1), carry unique node IDs (Obs. 1), stay ≥ 2\n\
         hops apart (Obs. 2), and their trees span all component nodes\n\
         rooted at the smallest-ID multiplicity node (Obs. 3) — the\n\
         Fig. 3 pipeline. (The paper's exact figure adjacency is only\n\
         published as an image; this fixture reproduces its parameters and\n\
         every structural property the text asserts.)"
    );
}
