//! Figure 4: disjoint root paths and one round of sliding on the worked
//! example.
//!
//! Fig. 4(a) shows the disjoint path sets computed in each spanning tree;
//! Fig. 4(b) shows the slide: every path node keeps a robot and the
//! hashed (previously empty) nodes receive one each.

use dispersion_bench::{banner, Table};
use dispersion_core::{worked_example, DispersionDynamic};
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::{ModelSpec, Simulator};

fn main() {
    banner(
        "F4",
        "Figure 4 (Section VI worked example)",
        "disjoint root paths per component; sliding occupies ≥ 1 previously\n\
         empty node per component while path nodes stay occupied",
    );

    let ex = worked_example::build();

    println!("Fig. 4(a): disjoint path sets");
    let mut t = Table::new(["component", "count(root)", "paths kept", "paths (root → leaf)"]);
    for (label, comp) in [("CG¹ (green)", ex.green()), ("CG² (red)", ex.red())] {
        let tree = ex.tree_of(&comp);
        let paths = ex.paths_of(&comp, &tree);
        paths.check_invariants(&tree);
        let rendered: Vec<String> = paths
            .iter()
            .map(|p| {
                p.nodes()
                    .iter()
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("→")
            })
            .collect();
        t.row([
            label.to_string(),
            comp.node(tree.root()).expect("root exists").count.to_string(),
            paths.len().to_string(),
            rendered.join("  "),
        ]);
    }
    println!("{t}");
    println!();

    println!("Fig. 4(b): one round of sliding");
    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        StaticNetwork::new(ex.graph.clone()),
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        ex.config.clone(),
    )
    .max_rounds(1)
    .build()
    .expect("k ≤ n");
    let out = sim.run().expect("valid run");
    let rec = &out.trace.records[0];
    let mut moved = Vec::new();
    for (robot, node) in out.final_config.iter() {
        let before = ex.config.node_of(robot).expect("same fleet");
        if before != node {
            moved.push(format!("{robot}: {before}→{node}"));
        }
    }
    println!("  slides: {}", moved.join("  "));
    println!(
        "  occupied {} → {}; previously-empty nodes gaining a robot: {}",
        rec.occupied_before, rec.occupied_after, rec.newly_occupied
    );
    assert!(rec.newly_occupied >= 2, "one hashed node per component");
    // Every node occupied before the slide is still occupied after.
    for v in ex.config.occupied_nodes() {
        assert!(
            out.final_config.count_at(v) >= 1,
            "path node {v} must stay occupied"
        );
    }
    println!();
    println!(
        "result: both components slid one robot per disjoint path; every\n\
         previously occupied node kept a robot and {} previously empty\n\
         nodes were settled — the Fig. 4(b) hashed-node guarantee (the\n\
         heart of Lemma 7's per-round progress).",
        rec.newly_occupied
    );
}
