//! Table I, row 3 (Theorems 3 & 4): in the global + 1-NK model,
//! DISPERSION is solvable in Θ(k) rounds with Θ(log k) bits.
//!
//! (a) Lower bound: against the star-pair adversary every algorithm needs
//!     ≥ k − 1 rounds from a rooted start; Algorithm 4 hits exactly k − 1.
//! (b) Upper bound: across static graphs, oblivious churn, T-interval
//!     dynamics and the adaptive adversary, rounds / k stays ≤ 1.

use dispersion_bench::{banner, run_alg4_random, run_alg4_rooted, Table};
use dispersion_core::lower_bound;
use dispersion_engine::adversary::{
    EdgeChurnNetwork, StarPairAdversary, StaticNetwork, TIntervalNetwork,
};
use dispersion_graph::generators;

fn main() {
    banner(
        "T1.r3",
        "Table I row 3 / Theorems 3 & 4",
        "global comm + 1-NK: Θ(k)-round algorithm with Θ(log k) bits per robot",
    );

    println!("(a) lower bound — star-pair adversary, rooted start (Fig. 2 setting)");
    let mut t = Table::new([
        "k",
        "n",
        "rounds",
        "floor k-1",
        "max new/round",
        "dyn diameter",
        "tight",
    ]);
    for k in [4usize, 8, 16, 32, 64] {
        let report = lower_bound::run_lower_bound(k + 6, k).expect("valid run");
        t.row([
            k.to_string(),
            (k + 6).to_string(),
            report.rounds.to_string(),
            report.floor.to_string(),
            report.max_new_per_round.to_string(),
            report.dynamic_diameter.to_string(),
            report.is_tight().to_string(),
        ]);
        assert!(report.is_tight());
    }
    println!("{t}");
    println!();

    println!("(b) upper bound — rounds / k across dynamic networks (rounds ≤ k everywhere)");
    let mut t = Table::new(["network", "n", "k", "rounds", "rounds/k", "memory bits"]);
    for k in [8usize, 16, 32, 64] {
        let n = k + k / 2;
        for (name, out) in [
            (
                "static random",
                run_alg4_rooted(
                    StaticNetwork::new(generators::random_connected(n, 0.1, k as u64).unwrap()),
                    n,
                    k,
                ),
            ),
            ("edge churn", run_alg4_rooted(EdgeChurnNetwork::new(n, 0.1, k as u64), n, k)),
            (
                "T-interval (T=4)",
                run_alg4_rooted(TIntervalNetwork::new(n, 4, 0.1, k as u64), n, k),
            ),
            ("star-pair (adaptive)", run_alg4_rooted(StarPairAdversary::new(n), n, k)),
            (
                "churn, arbitrary start",
                run_alg4_random(EdgeChurnNetwork::new(n, 0.1, k as u64), n, k, k as u64),
            ),
        ] {
            assert!(out.dispersed);
            assert!(out.rounds <= k as u64, "{name}: O(k) violated");
            t.row([
                name.to_string(),
                n.to_string(),
                k.to_string(),
                out.rounds.to_string(),
                format!("{:.2}", out.rounds as f64 / k as f64),
                out.max_memory_bits().to_string(),
            ]);
        }
    }
    println!("{t}");
    println!();
    println!(
        "result: rounds ≥ k−1 against the lower-bound adversary and\n\
         rounds ≤ k on every network, with exactly ⌈log₂ k⌉ memory bits —\n\
         the tight Θ(k)-round, Θ(log k)-bit cell of Table I row 3."
    );
}
