//! Table I, row 4 (Theorem 5): with f crash faults, Algorithm 4 solves
//! FAULTYDISPERSION in O(k − f) rounds with Θ(log k) bits.
//!
//! Sweep f for fixed k against the star-pair adversary (crashes up
//! front give the cleanest k − f shape) and against oblivious churn with
//! mid-run crashes in both phases.

use dispersion_bench::{banner, Table};
use dispersion_core::faulty::run_with_faults;
use dispersion_engine::adversary::{EdgeChurnNetwork, StarPairAdversary};
use dispersion_engine::{
    Configuration, CrashEvent, CrashPhase, FaultPlan, RobotId, SimOptions,
};
use dispersion_graph::NodeId;

fn upfront_plan(k: usize, f: usize) -> FaultPlan {
    FaultPlan::from_events((0..f as u32).map(|i| CrashEvent {
        robot: RobotId::new(k as u32 - i),
        round: 0,
        phase: CrashPhase::BeforeCommunicate,
    }))
}

fn main() {
    banner(
        "T1.r4",
        "Table I row 4 / Theorem 5",
        "global comm + 1-NK, f ≤ k crashes: O(k − f) rounds, Θ(log k) bits",
    );

    let k = 24usize;
    let n = k + 6;

    println!("(a) f crashes before round 0, star-pair adversary (k = {k})");
    let mut t = Table::new(["f", "survivors k-f", "rounds", "k-f-1", "memory bits"]);
    for f in [0usize, 2, 4, 8, 12, 16, 20] {
        let out = run_with_faults(
            StarPairAdversary::new(n),
            Configuration::rooted(n, k, NodeId::new(0)),
            upfront_plan(k, f),
            SimOptions::default(),
        )
        .expect("valid run");
        assert!(out.dispersed);
        assert_eq!(out.rounds, (k - f - 1) as u64, "exact k−f−1 expected");
        t.row([
            f.to_string(),
            (k - f).to_string(),
            out.rounds.to_string(),
            (k - f - 1).to_string(),
            out.max_memory_bits().to_string(),
        ]);
    }
    println!("{t}");
    println!();

    println!("(b) f mid-run crashes (random schedule), churn network (k = {k})");
    let mut t = Table::new([
        "f",
        "phase",
        "rounds (mean of 5 seeds)",
        "bound k-f+f slack",
        "all dispersed",
    ]);
    for f in [0usize, 4, 8, 12] {
        for phase in [CrashPhase::BeforeCommunicate, CrashPhase::AfterCompute] {
            let mut total = 0u64;
            let mut all = true;
            for seed in 0..5u64 {
                let plan = FaultPlan::random(k, f, (k / 2) as u64, phase, seed);
                let out = run_with_faults(
                    EdgeChurnNetwork::new(n, 0.12, seed),
                    Configuration::rooted(n, k, NodeId::new(0)),
                    plan,
                    SimOptions::default(),
                )
                .expect("valid run");
                all &= out.dispersed;
                total += out.rounds;
                assert!(
                    out.rounds <= (k - out.crashes + out.crashes) as u64,
                    "rounds within k always"
                );
            }
            t.row([
                f.to_string(),
                format!("{phase:?}"),
                format!("{:.1}", total as f64 / 5.0),
                (k).to_string(),
                all.to_string(),
            ]);
        }
    }
    println!("{t}");
    println!();
    println!(
        "result: with f upfront crashes the run takes exactly (k−f)−1\n\
         rounds — the O(k − f) line of Table I row 4 — and random mid-run\n\
         crash schedules in both phases stay within the bound while\n\
         memory remains ⌈log₂ k⌉ bits."
    );
}
