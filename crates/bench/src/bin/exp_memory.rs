//! The Θ(log k) memory claim of Theorems 4 & 5, measured.
//!
//! For each k, runs Algorithm 4 to completion over several seeds and
//! reports the maximum persistent bits any robot carried between rounds
//! (aggregated through `RunSummary`); the series must track ⌈log₂ k⌉
//! exactly on every seed. Baselines are included for contrast.

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::{LocalDfs, RandomWalk};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::{EdgeChurnNetwork, StaticNetwork};
use dispersion_engine::stats::RunSummary;
use dispersion_engine::{
    Configuration, DispersionAlgorithm, ModelSpec, RobotId, SimOutcome, Simulator,
};
use dispersion_graph::{generators, NodeId};

const SEEDS: u64 = 3;

fn one_run<A: DispersionAlgorithm>(
    alg: A,
    model: ModelSpec,
    n: usize,
    k: usize,
    static_graph: bool,
    seed: u64,
) -> SimOutcome {
    if static_graph {
        Simulator::builder(
            alg,
            StaticNetwork::new(generators::random_connected(n, 0.1, seed).unwrap()),
            model,
            Configuration::rooted(n, k, NodeId::new(0)),
        )
        .max_rounds(1_000_000)
        .build()
        .expect("k ≤ n")
        .run()
        .expect("valid")
    } else {
        Simulator::builder(
            alg,
            EdgeChurnNetwork::new(n, 0.1, seed),
            model,
            Configuration::rooted(n, k, NodeId::new(0)),
        )
        .build()
        .expect("k ≤ n")
        .run()
        .expect("valid")
    }
}

fn measure(mk: impl Fn(u64) -> SimOutcome) -> RunSummary {
    let outcomes: Vec<SimOutcome> = (0..SEEDS).map(mk).collect();
    let summary = RunSummary::collect(&outcomes);
    assert!(summary.all_dispersed);
    summary
}

fn main() {
    banner(
        "Mem",
        "the Θ(log k) memory bound of Theorems 4 & 5 (Lemma 8)",
        "Algorithm 4 stores only the ⌈log k⌉-bit identifier between rounds",
    );

    let mut t = Table::new([
        "k",
        "⌈log₂ k⌉",
        "alg4 bits (dynamic)",
        "local-dfs bits (static)",
        "random-walk bits (static)",
    ]);
    for k in [2usize, 4, 8, 16, 32, 64, 128] {
        let n = k + k / 2 + 2;
        let expected = RobotId::bits_for_population(k);
        let alg4 = measure(|seed| {
            one_run(
                DispersionDynamic::new(),
                ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                n,
                k,
                false,
                seed.wrapping_add(k as u64),
            )
        });
        let dfs = measure(|seed| {
            one_run(
                LocalDfs::new(),
                ModelSpec::LOCAL_WITH_NEIGHBORHOOD,
                n,
                k,
                true,
                seed.wrapping_add(k as u64),
            )
        });
        let walk = measure(|seed| {
            one_run(
                RandomWalk::new(seed.wrapping_add(7)),
                ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                n,
                k,
                true,
                seed.wrapping_add(k as u64),
            )
        });
        assert_eq!(alg4.max_memory_bits, expected, "k={k}: Θ(log k) violated");
        t.row([
            k.to_string(),
            expected.to_string(),
            alg4.max_memory_bits.to_string(),
            dfs.max_memory_bits.to_string(),
            walk.max_memory_bits.to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: Algorithm 4's measured memory equals ⌈log₂ k⌉ for every k\n\
         and every seed (the identifier is the *only* persistent state;\n\
         components, trees and paths live in per-round temporary memory, as\n\
         the paper's model allows). The DFS baseline carries its stack\n\
         (O(k log Δ) bits) and the random walk its 64-bit PRNG state."
    );
}
