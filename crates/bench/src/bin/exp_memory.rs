//! The Θ(log k) memory claim of Theorems 4 & 5, measured.
//!
//! For each k, runs Algorithm 4 to completion and reports the maximum
//! persistent bits any robot carried between rounds; the series must
//! track ⌈log₂ k⌉ exactly. Baselines are included for contrast.

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::{LocalDfs, RandomWalk};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::{EdgeChurnNetwork, StaticNetwork};
use dispersion_engine::{
    Configuration, DispersionAlgorithm, ModelSpec, RobotId, SimOptions, Simulator,
};
use dispersion_graph::{generators, NodeId};

fn measure<A: DispersionAlgorithm>(
    alg: A,
    model: ModelSpec,
    n: usize,
    k: usize,
    static_graph: bool,
) -> (u64, usize) {
    let out = if static_graph {
        Simulator::new(
            alg,
            StaticNetwork::new(generators::random_connected(n, 0.1, k as u64).unwrap()),
            model,
            Configuration::rooted(n, k, NodeId::new(0)),
            SimOptions {
                max_rounds: 1_000_000,
                ..SimOptions::default()
            },
        )
        .expect("k ≤ n")
        .run()
        .expect("valid")
    } else {
        Simulator::new(
            alg,
            EdgeChurnNetwork::new(n, 0.1, k as u64),
            model,
            Configuration::rooted(n, k, NodeId::new(0)),
            SimOptions::default(),
        )
        .expect("k ≤ n")
        .run()
        .expect("valid")
    };
    assert!(out.dispersed);
    (out.rounds, out.max_memory_bits())
}

fn main() {
    banner(
        "Mem",
        "the Θ(log k) memory bound of Theorems 4 & 5 (Lemma 8)",
        "Algorithm 4 stores only the ⌈log k⌉-bit identifier between rounds",
    );

    let mut t = Table::new([
        "k",
        "⌈log₂ k⌉",
        "alg4 bits (dynamic)",
        "local-dfs bits (static)",
        "random-walk bits (static)",
    ]);
    for k in [2usize, 4, 8, 16, 32, 64, 128] {
        let n = k + k / 2 + 2;
        let expected = RobotId::bits_for_population(k);
        let (_, alg4_bits) = measure(
            DispersionDynamic::new(),
            ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
            n,
            k,
            false,
        );
        let (_, dfs_bits) = measure(
            LocalDfs::new(),
            ModelSpec::LOCAL_WITH_NEIGHBORHOOD,
            n,
            k,
            true,
        );
        let (_, walk_bits) = measure(
            RandomWalk::new(7),
            ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
            n,
            k,
            true,
        );
        assert_eq!(alg4_bits, expected, "k={k}: Θ(log k) violated");
        t.row([
            k.to_string(),
            expected.to_string(),
            alg4_bits.to_string(),
            dfs_bits.to_string(),
            walk_bits.to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: Algorithm 4's measured memory equals ⌈log₂ k⌉ for every k\n\
         (the identifier is the *only* persistent state; components, trees\n\
         and paths live in per-round temporary memory, as the paper's model\n\
         allows). The DFS baseline carries its stack (O(k log Δ) bits) and\n\
         the random walk its 64-bit PRNG state."
    );
}
