//! Table I, row 1 (Theorem 1): local communication + 1-neighborhood
//! knowledge + unlimited memory ⇒ DISPERSION impossible on dynamic graphs.
//!
//! We run the proof's path-trap adversary against a deterministic local
//! algorithm for many rounds across k, then hand the *same* victim model
//! a static graph (where it succeeds) — the failure is caused by the
//! dynamism + locality combination, exactly as the theorem states.

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::GreedyLocal;
use dispersion_core::impossibility;
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::{Configuration, ModelSpec, SimOptions, Simulator};
use dispersion_graph::{generators, NodeId};

fn main() {
    banner(
        "T1.r1",
        "Table I row 1 / Theorem 1 / Fig. 1",
        "local comm + 1-NK: impossible (k ≥ 5), even with unlimited memory",
    );

    const ROUNDS: u64 = 1000;
    let mut t = Table::new([
        "k",
        "n",
        "rounds survived",
        "dispersed",
        "adversary misses",
        "static control (rounds)",
    ]);
    for k in [5usize, 6, 8, 12] {
        let n = k + 5;
        let report = impossibility::run_path_trap(n, k, ROUNDS).expect("valid run");
        // Control: same victim, same model, static star — disperses fast.
        let mut control = Simulator::new(
            GreedyLocal::new(),
            StaticNetwork::new(generators::star(n).unwrap()),
            ModelSpec::LOCAL_WITH_NEIGHBORHOOD,
            Configuration::rooted(n, k, NodeId::new(0)),
            SimOptions::default(),
        )
        .expect("k ≤ n");
        let control_out = control.run().expect("valid run");
        assert!(control_out.dispersed, "control must disperse");
        t.row([
            k.to_string(),
            n.to_string(),
            report.rounds.to_string(),
            report.dispersed.to_string(),
            report.trap_misses.to_string(),
            control_out.rounds.to_string(),
        ]);
        assert!(!report.dispersed, "Theorem 1 violated at k={k}");
    }
    println!("{t}");
    println!();
    println!(
        "result: the trap held every victim for {ROUNDS} rounds with zero\n\
         adversary misses (each round the move oracle certified that the\n\
         end-of-round configuration keeps a multiplicity), while the same\n\
         local-model victim disperses on a static graph — matching Table I\n\
         row 1: DISPERSION is impossible in the local model on dynamic\n\
         graphs."
    );
}
