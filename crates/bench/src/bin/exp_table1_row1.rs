//! Table I, row 1 (Theorem 1): local communication + 1-neighborhood
//! knowledge + unlimited memory ⇒ DISPERSION impossible on dynamic graphs.
//!
//! A thin wrapper over `dispersion-lab`: one campaign runs the proof's
//! path-trap adversary against the deterministic local victim from the
//! near-dispersed configuration; a second campaign hands the *same*
//! victim model a static star (where it disperses) — the failure is
//! caused by the dynamism + locality combination, exactly as the theorem
//! states. Both campaigns leave JSONL artifacts under `results/`.

use dispersion_bench::{banner, Table};
use dispersion_lab::{
    run_campaign, AdversaryKind, AlgorithmKind, CampaignReport, CampaignSpec, CellKey, NRule,
    Placement, RunnerOptions,
};

const ROUNDS: u64 = 1000;
const KS: [usize; 4] = [5, 6, 8, 12];

fn spec(name: &str, adversary: AdversaryKind, placement: Placement, max_rounds: u64) -> CampaignSpec {
    CampaignSpec {
        name: name.into(),
        algorithms: vec![AlgorithmKind::GreedyLocal],
        adversaries: vec![adversary],
        ks: KS.to_vec(),
        n_rule: NRule::k_plus(5),
        seeds: 1,
        placement,
        max_rounds,
        ..CampaignSpec::default()
    }
}

fn run(spec: &CampaignSpec) -> CampaignReport {
    let opts = RunnerOptions {
        jobs: 4,
        fresh: true,
        ..RunnerOptions::default()
    };
    run_campaign(spec, &opts).expect("campaign runs")
}

fn cell<'a>(report: &'a CampaignReport, adversary: &str, k: usize) -> &'a dispersion_lab::CellStats {
    report
        .cells
        .get(&CellKey {
            algorithm: "greedy-local".into(),
            adversary: adversary.into(),
            n: k + 5,
            k,
            faults: 0,
        })
        .expect("cell present")
}

fn main() {
    banner(
        "T1.r1",
        "Table I row 1 / Theorem 1 / Fig. 1",
        "local comm + 1-NK: impossible (k ≥ 5), even with unlimited memory",
    );

    let trap = run(&spec("exp-t1-trap", AdversaryKind::PathTrap, Placement::NearDispersed, ROUNDS));
    let control = run(&spec("exp-t1-control", AdversaryKind::StaticStar, Placement::Rooted, 100_000));

    let mut t = Table::new([
        "k",
        "n",
        "rounds survived",
        "dispersed",
        "static control (rounds)",
    ]);
    for k in KS {
        let trapped = cell(&trap, "path-trap", k).run_summary().expect("trap ran");
        let free = cell(&control, "static-star", k).run_summary().expect("control ran");
        assert!(!trapped.all_dispersed, "Theorem 1 violated at k={k}");
        assert_eq!(trapped.max_rounds, ROUNDS, "trap must hold all {ROUNDS} rounds");
        assert!(free.all_dispersed, "control must disperse at k={k}");
        t.row([
            k.to_string(),
            (k + 5).to_string(),
            trapped.max_rounds.to_string(),
            trapped.all_dispersed.to_string(),
            free.max_rounds.to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: the trap held every victim for {ROUNDS} rounds, while the\n\
         same local-model victim disperses on a static star — matching\n\
         Table I row 1: DISPERSION is impossible in the local model on\n\
         dynamic graphs. Full per-run records: results/exp-t1-trap.jsonl\n\
         and results/exp-t1-control.jsonl."
    );
}
