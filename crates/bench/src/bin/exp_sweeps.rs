//! The scaling series behind Table I row 3: rounds vs. k per network,
//! aggregated over seeds (min / mean / max), the way an empirical figure
//! would present it.
//!
//! A thin wrapper over `dispersion-lab`: one campaign spans the whole
//! (network × k × seed) grid, runs it on 4 workers, and leaves a JSONL
//! artifact under `results/`; this binary only renders and asserts.

use dispersion_bench::{banner, Table};
use dispersion_lab::{
    run_campaign, AdversaryKind, AlgorithmKind, CampaignSpec, NRule, RunnerOptions,
};

const SEEDS: u64 = 10;

fn main() {
    banner(
        "Sweeps",
        "the rounds-vs-k scaling series of Theorems 4 & 5 (Table I row 3)",
        "rounds ≤ k for every network, every seed, every k",
    );

    let spec = CampaignSpec {
        name: "exp-sweeps".into(),
        algorithms: vec![AlgorithmKind::Alg4],
        adversaries: vec![
            AdversaryKind::Static,
            AdversaryKind::Churn,
            AdversaryKind::BrokenRing,
            AdversaryKind::TInterval,
            AdversaryKind::StarPair,
        ],
        ks: vec![8, 16, 32, 64],
        n_rule: NRule::THREE_HALVES,
        seeds: SEEDS,
        edge_prob: 0.1,
        ..CampaignSpec::default()
    };
    let opts = RunnerOptions {
        jobs: 4,
        fresh: true,
        ..RunnerOptions::default()
    };
    let report = run_campaign(&spec, &opts).expect("campaign runs");

    let mut t = Table::new(["network", "k", "min", "mean", "max", "max/k", "all ≤ k"]);
    for (key, cell) in &report.cells {
        let summary = cell.run_summary().expect("every run completed");
        assert_eq!(summary.samples as u64, SEEDS);
        assert!(summary.all_dispersed, "{} k={}", key.adversary, key.k);
        assert!(
            summary.within(key.k as u64),
            "{} k={}: O(k) violated",
            key.adversary,
            key.k
        );
        t.row([
            key.adversary.clone(),
            key.k.to_string(),
            summary.min_rounds.to_string(),
            format!("{:.1}", summary.mean_rounds),
            summary.max_rounds.to_string(),
            format!("{:.2}", summary.max_rounds as f64 / key.k as f64),
            "yes".to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: across {SEEDS} seeded arbitrary initial configurations per\n\
         cell, the maximum round count never exceeded k on any network —\n\
         the O(k) guarantee is not a lucky seed. The adaptive star-pair\n\
         rows sit closest to the bound, as the tight instance should.\n\
         Full per-run records: results/exp-sweeps.jsonl."
    );
}
