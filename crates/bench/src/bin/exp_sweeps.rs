//! The scaling series behind Table I row 3: rounds vs. k per network,
//! aggregated over seeds (min / mean / max), the way an empirical figure
//! would present it.

use dispersion_bench::{banner, Table};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::{
    DynamicNetwork, DynamicRingNetwork, EdgeChurnNetwork, StarPairAdversary,
    StaticNetwork, TIntervalNetwork,
};
use dispersion_engine::stats::RunSummary;
use dispersion_engine::{Configuration, ModelSpec, SimOptions, SimOutcome, Simulator};
use dispersion_graph::generators;

const SEEDS: u64 = 10;

fn one_run<N: DynamicNetwork>(net: N, n: usize, k: usize, seed: u64) -> SimOutcome {
    Simulator::new(
        DispersionDynamic::new(),
        net,
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        Configuration::random(n, k, seed, true),
        SimOptions::default(),
    )
    .expect("k ≤ n")
    .run()
    .expect("valid run")
}

fn sweep(make_net: impl Fn(u64) -> Box<dyn DynamicNetwork>, n: usize, k: usize) -> RunSummary {
    let outcomes: Vec<SimOutcome> = (0..SEEDS)
        .map(|seed| one_run(make_net(seed), n, k, seed))
        .collect();
    RunSummary::collect(&outcomes)
}

fn main() {
    banner(
        "Sweeps",
        "the rounds-vs-k scaling series of Theorems 4 & 5 (Table I row 3)",
        "rounds ≤ k for every network, every seed, every k",
    );

    let mut t = Table::new([
        "network",
        "k",
        "min",
        "mean",
        "max",
        "max/k",
        "all ≤ k",
    ]);
    for k in [8usize, 16, 32, 64] {
        let n = k + k / 2;
        let rows: Vec<(&str, RunSummary)> = vec![
            (
                "static random",
                sweep(
                    |seed| {
                        Box::new(StaticNetwork::new(
                            generators::random_connected(n, 0.1, seed).unwrap(),
                        ))
                    },
                    n,
                    k,
                ),
            ),
            (
                "edge churn",
                sweep(|seed| Box::new(EdgeChurnNetwork::new(n, 0.1, seed)), n, k),
            ),
            (
                "dynamic ring",
                sweep(
                    |seed| Box::new(DynamicRingNetwork::new(n, true, seed)),
                    n,
                    k,
                ),
            ),
            (
                "T-interval (T=4)",
                sweep(|seed| Box::new(TIntervalNetwork::new(n, 4, 0.1, seed)), n, k),
            ),
            (
                "star-pair (adaptive)",
                sweep(|_| Box::new(StarPairAdversary::new(n)), n, k),
            ),
        ];
        for (name, summary) in rows {
            assert!(summary.all_dispersed, "{name} k={k}");
            assert!(summary.within(k as u64), "{name} k={k}: O(k) violated");
            t.row([
                name.to_string(),
                k.to_string(),
                summary.min_rounds.to_string(),
                format!("{:.1}", summary.mean_rounds),
                summary.max_rounds.to_string(),
                format!("{:.2}", summary.max_rounds as f64 / k as f64),
                "yes".to_string(),
            ]);
        }
    }
    println!("{t}");
    println!();
    println!(
        "result: across {SEEDS} seeded arbitrary initial configurations per\n\
         cell, the maximum round count never exceeded k on any network —\n\
         the O(k) guarantee is not a lucky seed. The adaptive star-pair\n\
         rows sit closest to the bound, as the tight instance should."
    );
}
