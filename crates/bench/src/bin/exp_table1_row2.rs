//! Table I, row 2 (Theorem 2): global communication *without*
//! 1-neighborhood knowledge + unlimited memory ⇒ DISPERSION impossible.
//!
//! The clique-trap adversary finds, every round, an unused clique edge
//! via the move oracle and splices the empty region in through port
//! positions no robot uses — zero new nodes are ever visited. The same
//! blind victim disperses on a static clique (control).

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::BlindGlobal;
use dispersion_core::impossibility;
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::{ModelSpec, Simulator};
use dispersion_graph::generators;

fn main() {
    banner(
        "T1.r2",
        "Table I row 2 / Theorem 2",
        "global comm without 1-NK: impossible (k ≥ 3), zero progress per round",
    );

    const ROUNDS: u64 = 1000;
    let mut t = Table::new([
        "k",
        "n",
        "rounds survived",
        "new nodes ever",
        "dispersed",
        "adversary misses",
        "static control (rounds)",
    ]);
    for k in [3usize, 4, 8, 16] {
        let n = k + 5;
        let report = impossibility::run_clique_trap(n, k, ROUNDS).expect("valid run");
        let mut control = Simulator::builder(
            BlindGlobal::new(),
            StaticNetwork::new(generators::complete(n).unwrap()),
            ModelSpec::GLOBAL_BLIND,
            impossibility::near_dispersed_config(n, k),
        )
        .max_rounds(50_000)
        .build()
        .expect("k ≤ n");
        let control_out = control.run().expect("valid run");
        assert!(control_out.dispersed, "control must disperse");
        t.row([
            k.to_string(),
            n.to_string(),
            report.rounds.to_string(),
            report.total_new_nodes.to_string(),
            report.dispersed.to_string(),
            report.trap_misses.to_string(),
            control_out.rounds.to_string(),
        ]);
        assert!(!report.dispersed, "Theorem 2 violated at k={k}");
        assert_eq!(report.total_new_nodes, 0, "progress must be zero at k={k}");
    }
    println!("{t}");
    println!();
    println!(
        "result: zero new nodes over {ROUNDS} rounds for every k — the\n\
         paper's construction (\"no new node is visited by the robots in\n\
         the next round; hence the progress is zero\") reproduced exactly,\n\
         while the same blind victim finishes on a static clique."
    );
}
