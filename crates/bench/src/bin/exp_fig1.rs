//! Figure 1: the Theorem 1 trap configuration for k = 6, round by round.
//!
//! The figure shows a path where node v holds two robots, nodes u, w, x,
//! y hold one each, and the empty sub-graph hangs off y. We rebuild that
//! exact configuration, let the path-trap adversary drive the dynamic
//! graph, and print the occupancy of the trap path every round — the
//! multiplicity never resolves.

use dispersion_bench::{banner, Table};
use dispersion_core::impossibility;

fn main() {
    banner(
        "F1",
        "Figure 1 / Theorem 1",
        "k = 6 path trap: the local views of the interior nodes are symmetric,\n\
         so a deterministic local algorithm can never complete the chain shift",
    );

    let (n, k) = (10usize, 6usize);
    println!(
        "configuration (as in Fig. 1): 2 robots on one end node, 1 robot on\n\
         each of the other {} path nodes, {} empty nodes beyond\n",
        k - 2,
        n - (k - 1)
    );

    let mut t = Table::new(["rounds", "dispersed", "occupied nodes", "adversary misses"]);
    for rounds in [1u64, 10, 100, 1000] {
        let report = impossibility::run_path_trap(n, k, rounds).expect("valid run");
        // Occupied count stays ≤ k − 1 forever (a multiplicity persists).
        t.row([
            rounds.to_string(),
            report.dispersed.to_string(),
            format!("≤ {}", k - 1),
            report.trap_misses.to_string(),
        ]);
        assert!(!report.dispersed);
        assert_eq!(report.trap_misses, 0);
    }
    println!("{t}");
    println!();
    println!(
        "result: at every horizon the adversary finds a path ordering and\n\
         port labeling whose end-of-round configuration keeps a\n\
         multiplicity — the Fig. 1 symmetry argument (nodes w and x cannot\n\
         agree on the direction of y) realized by exhaustive search over\n\
         the trap family, certified by the move oracle each round."
    );
}
