//! Engine round-loop throughput benchmark — emits `BENCH_engine.json`.
//!
//! Runs the pinned matrix from `dispersion_lab::throughput` (Algorithm 4,
//! rooted, k = n/2, over ring/grid/adversarial networks at
//! n ∈ {64, 256, 1024}), prints a table, and writes a JSON document.
//!
//! ```text
//! cargo run --release -p dispersion-bench --bin bench_engine -- \
//!     --out BENCH_engine.json --label post-refactor \
//!     [--baseline results/BENCH_engine_baseline.json] [--quick] \
//!     [--threads N] [--gate PCT]
//! ```
//!
//! `--baseline` embeds the results array of an earlier emission so the
//! committed artifact carries before/after numbers side by side.
//! `--threads N` overrides the engine thread count of every case in the
//! matrix (the CI parallel smoke leg). `--gate PCT` (requires
//! `--baseline`) exits non-zero when any matched single-thread row is
//! more than PCT percent slower than the baseline.

use std::fs;
use std::process::ExitCode;

use dispersion_lab::throughput::{
    engine_cases, extract_results_array, measure, regression_gate, render_bench_json,
    render_table,
};

struct Args {
    out: Option<String>,
    label: String,
    baseline: Option<String>,
    quick: bool,
    threads: Option<usize>,
    gate: Option<f64>,
}

fn parse_args() -> Result<Args, String> {
    let mut out = None;
    let mut label = String::from("current");
    let mut baseline = None;
    let mut quick = false;
    let mut threads = None;
    let mut gate = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = Some(it.next().ok_or("--out needs a path")?),
            "--label" => label = it.next().ok_or("--label needs a value")?,
            "--baseline" => baseline = Some(it.next().ok_or("--baseline needs a path")?),
            "--quick" => quick = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                let v: usize = v.parse().map_err(|_| format!("bad --threads {v}"))?;
                if v == 0 {
                    return Err("--threads must be ≥ 1".to_string());
                }
                threads = Some(v);
            }
            "--gate" => {
                let v = it.next().ok_or("--gate needs a percentage")?;
                gate = Some(v.parse().map_err(|_| format!("bad --gate {v}"))?);
            }
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if gate.is_some() && baseline.is_none() {
        return Err("--gate requires --baseline".to_string());
    }
    Ok(Args { out, label, baseline, quick, threads, gate })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("bench_engine: {e}");
            return ExitCode::FAILURE;
        }
    };

    let baseline = match &args.baseline {
        Some(path) => {
            let doc = match fs::read_to_string(path) {
                Ok(doc) => doc,
                Err(e) => {
                    eprintln!("bench_engine: {path}: {e}");
                    return ExitCode::FAILURE;
                }
            };
            let Some(arr) = extract_results_array(&doc) else {
                eprintln!("bench_engine: {path}: no results array found");
                return ExitCode::FAILURE;
            };
            let label = dispersion_lab::json::str_value(&doc.replace('\n', " "), "label")
                .unwrap_or_else(|| "baseline".to_string());
            Some((label, arr))
        }
        None => None,
    };

    let mut cases = engine_cases(args.quick);
    if let Some(threads) = args.threads {
        for case in &mut cases {
            case.threads = threads;
        }
    }
    let mut results = Vec::with_capacity(cases.len());
    for case in &cases {
        eprintln!("measuring {} ({} repeats)...", case.label(), case.repeats);
        results.push(measure(case));
    }

    println!("{}", render_table(&results));

    if let (Some(pct), Some((_, base_results))) = (args.gate, baseline.as_ref()) {
        match regression_gate(&results, base_results, pct) {
            Ok(report) => eprint!("regression gate (≤{pct}%):\n{report}"),
            Err(report) => {
                eprint!("regression gate (≤{pct}%):\n{report}");
                return ExitCode::FAILURE;
            }
        }
    }

    let doc = render_bench_json(
        &args.label,
        &results,
        baseline.as_ref().map(|(l, a)| (l.as_str(), a.as_str())),
    );
    if let Some(out) = &args.out {
        if let Err(e) = fs::write(out, &doc) {
            eprintln!("bench_engine: {out}: {e}");
            return ExitCode::FAILURE;
        }
        eprintln!("wrote {out}");
    } else {
        print!("{doc}");
    }
    ExitCode::SUCCESS
}
