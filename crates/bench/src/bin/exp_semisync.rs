//! Extension experiment: semi-synchronous activation (future-work
//! direction 4 of Section VIII).
//!
//! The paper's model activates every robot every round. Here each robot
//! is activated independently with probability `p` per round: Algorithm 4
//! remains safe (structures are recomputed from scratch each round; no
//! stale agreement survives) and terminates, but the k-round bound decays
//! roughly like 1/p — rounds where a designated mover sleeps are lost.

use dispersion_bench::{banner, Table};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::{EdgeChurnNetwork, StarPairAdversary};
use dispersion_engine::stats::RunSummary;
use dispersion_engine::{
    Activation, Configuration, ModelSpec, Simulator,
};
use dispersion_graph::NodeId;

const SEEDS: u64 = 8;

fn summarize(p_percent: u8, adaptive: bool, n: usize, k: usize) -> RunSummary {
    use dispersion_engine::adversary::DynamicNetwork;
    let outcomes: Vec<_> = (0..SEEDS)
        .map(|seed| {
            let network: Box<dyn DynamicNetwork> = if adaptive {
                Box::new(StarPairAdversary::new(n))
            } else {
                Box::new(EdgeChurnNetwork::new(n, 0.12, seed))
            };
            let mut sim = Simulator::builder(
                DispersionDynamic::new(),
                network,
                ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                Configuration::rooted(n, k, NodeId::new(0)),
            )
            .max_rounds(50_000)
            .activation(if p_percent == 100 {
                Activation::FullSync
            } else {
                Activation::SemiSync { p_percent, seed }
            })
            .build()
            .expect("k ≤ n");
            sim.run().expect("valid run")
        })
        .collect();
    RunSummary::collect(&outcomes)
}

fn main() {
    banner(
        "Semisync",
        "semi-synchronous activation (Section VIII future work, extension)",
        "Algorithm 4 stays safe under partial activation; the k-round bound\n\
         degrades smoothly with the activation probability",
    );

    let (n, k) = (20usize, 14usize);
    let mut t = Table::new([
        "activation p",
        "churn mean rounds",
        "churn max",
        "star-pair mean",
        "star-pair max",
        "all dispersed",
    ]);
    for p in [100u8, 80, 60, 40, 20] {
        let churn = summarize(p, false, n, k);
        let adaptive = summarize(p, true, n, k);
        assert!(churn.all_dispersed && adaptive.all_dispersed, "p={p}");
        t.row([
            format!("{p}%"),
            format!("{:.1}", churn.mean_rounds),
            churn.max_rounds.to_string(),
            format!("{:.1}", adaptive.mean_rounds),
            adaptive.max_rounds.to_string(),
            "yes".to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: every run terminated (safety survives partial activation —\n\
         all structures are rebuilt per round), while round counts scale\n\
         up as activation drops; at p = 100% the synchronous bound k = {k}\n\
         holds exactly as in Table I row 3."
    );
}
