//! Extension experiment: the Byzantine boundary (future-work direction 3
//! of Section VIII).
//!
//! Crash faults cost rounds (Theorem 5); Byzantine faults cost
//! *correctness*. One deviant robot, depending on its strategy, ranges
//! from harmless to a complete denial-of-service — measured here.

use dispersion_bench::{banner, Table};
use dispersion_core::byzantine::{honest_dispersed, ByzantineStrategy, WithByzantine};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::EdgeChurnNetwork;
use dispersion_engine::{Configuration, ModelSpec, RobotId, Simulator};
use dispersion_graph::NodeId;

fn main() {
    banner(
        "Byzantine",
        "Byzantine robots (Section VIII future work, extension)",
        "one deviant ranges from harmless to total denial-of-service —\n\
         the reason Byzantine dispersion needs a new problem statement",
    );

    let (n, k) = (16usize, 11usize);
    const HORIZON: u64 = 400;
    let mut t = Table::new([
        "deviant strategy",
        "deviant id",
        "dispersed",
        "rounds",
        "honest dispersed at end",
    ]);
    for (label, strategy, deviant) in [
        ("none (control)", None, 0u32),
        ("freeze, largest id", Some(ByzantineStrategy::Freeze), k as u32),
        ("freeze, smallest id", Some(ByzantineStrategy::Freeze), 1),
        ("chase crowds", Some(ByzantineStrategy::ChaseCrowds), k as u32),
        ("scramble", Some(ByzantineStrategy::Scramble), k as u32),
    ] {
        let deviants: Vec<RobotId> = strategy
            .map(|_| vec![RobotId::new(deviant)])
            .unwrap_or_default();
        let set: std::collections::BTreeSet<RobotId> = deviants.iter().copied().collect();
        let alg = WithByzantine::new(
            DispersionDynamic::new(),
            deviants,
            strategy.unwrap_or(ByzantineStrategy::Freeze),
        );
        let mut sim = Simulator::builder(
            alg,
            EdgeChurnNetwork::new(n, 0.15, 3),
            ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
            Configuration::rooted(n, k, NodeId::new(0)),
        )
        .max_rounds(HORIZON)
        .build()
        .expect("k ≤ n");
        let out = sim.run().expect("valid run");
        t.row([
            label.to_string(),
            if strategy.is_some() {
                format!("r{deviant}")
            } else {
                "-".to_string()
            },
            out.dispersed.to_string(),
            out.rounds.to_string(),
            honest_dispersed(&out.final_config, &set).to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: deviation severity is strategy-dependent. The smallest-id\n\
         freezer coincides with the honest anchor role (harmless); the\n\
         scrambler ignores the protocol but is not adversarial and can\n\
         stumble into a dispersion configuration; the largest-id freezer\n\
         blocks every slide it is assigned (total denial-of-service from a\n\
         rooted start); and the crowd-chaser actively re-creates\n\
         multiplicities so the global termination predicate never holds.\n\
         Byzantine tolerance therefore needs both a new mover-assignment\n\
         design and a new problem statement (dispersion of the honest\n\
         robots) — the paper's future-work direction 3."
    );
}
