//! Extension experiment: the oracle-guided stress adversary.
//!
//! `MinProgressSampler` samples candidate topologies each round and
//! commits the one the move oracle scores worst for the robots — a
//! *generic* adaptive adversary, unlike the hand-crafted theorem
//! constructions. Lemma 7 predicts it can never push Algorithm 4 below
//! one new node per round; the Θ(k) bound must therefore survive any
//! sampling budget.

use dispersion_bench::{banner, Table};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::MinProgressSampler;
use dispersion_engine::{Configuration, ModelSpec, Simulator};
use dispersion_graph::NodeId;

fn main() {
    banner(
        "Stress",
        "Lemma 7 under a generic adaptive adversary (extension)",
        "no adversary choice of connected topology can stop per-round progress",
    );

    let (n, k) = (24usize, 16usize);
    let mut t = Table::new([
        "candidates/round",
        "rounds",
        "rounds/k",
        "min progress seen",
        "rounds at minimum",
    ]);
    for budget in [1usize, 4, 16, 64] {
        let mut sim = Simulator::builder(
            DispersionDynamic::new(),
            MinProgressSampler::new(n, budget, 0.12, 11),
            ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
            Configuration::rooted(n, k, NodeId::new(0)),
        )
        .build()
        .expect("k ≤ n");
        let out = sim.run().expect("valid run");
        assert!(out.dispersed);
        assert!(out.rounds <= k as u64, "Θ(k) must survive budget {budget}");
        let history = sim.network().progress_history();
        let min_progress = history.iter().copied().min().unwrap_or(0);
        assert!(min_progress >= 1, "Lemma 7 violated");
        let at_min = history.iter().filter(|&&p| p == min_progress).count();
        t.row([
            budget.to_string(),
            out.rounds.to_string(),
            format!("{:.2}", out.rounds as f64 / k as f64),
            min_progress.to_string(),
            at_min.to_string(),
        ]);
    }
    println!("{t}");
    println!();
    println!(
        "result: as the adversary's per-round sampling budget grows it\n\
         pins the robots to the Lemma 7 floor (exactly one new node per\n\
         round) more often, pushing rounds toward k — but never beyond:\n\
         the guarantee that at least one disjoint root path reaches an\n\
         empty node holds on every connected graph."
    );
}
