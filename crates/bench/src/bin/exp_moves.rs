//! Extension experiment: total robot moves ("energy") per algorithm.
//!
//! The paper optimizes rounds and memory; total moves is the third
//! quantity a deployment cares about (battery). Sliding moves every robot
//! on every active path each round, so Algorithm 4 trades extra moves for
//! its round optimality; the DFS baseline moves the whole group along
//! every edge; the random walk wanders.

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::{LocalDfs, RandomWalk};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::{
    Configuration, DispersionAlgorithm, ModelSpec, SimOptions, SimOutcome, Simulator,
};
use dispersion_graph::{generators, NodeId};

fn run<A: DispersionAlgorithm>(
    alg: A,
    model: ModelSpec,
    n: usize,
    k: usize,
    sparse: bool,
) -> SimOutcome {
    let g = if sparse {
        generators::cycle(n).unwrap()
    } else {
        generators::random_connected(n, 0.15, k as u64).unwrap()
    };
    let mut sim = Simulator::new(
        alg,
        StaticNetwork::new(g),
        model,
        Configuration::rooted(n, k, NodeId::new(0)),
        SimOptions {
            max_rounds: 2_000_000,
            ..SimOptions::default()
        },
    )
    .expect("k ≤ n");
    let out = sim.run().expect("valid run");
    assert!(out.dispersed);
    out
}

fn main() {
    banner(
        "Moves",
        "total-moves accounting across algorithms (extension)",
        "rounds-vs-moves trade-off: Θ(k) rounds costs O(k²) moves worst case",
    );

    for (label, sparse) in [("dense random graphs", false), ("sparse cycles", true)] {
        println!("({label})");
        let mut t = Table::new([
            "k",
            "alg4 rounds",
            "alg4 moves",
            "dfs rounds",
            "dfs moves",
            "walk rounds",
            "walk moves",
        ]);
        for k in [8usize, 16, 32] {
            let n = k + k / 2;
            let alg4 = run(
                DispersionDynamic::new(),
                ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                n,
                k,
                sparse,
            );
            let dfs = run(LocalDfs::new(), ModelSpec::LOCAL_WITH_NEIGHBORHOOD, n, k, sparse);
            let walk = run(
                RandomWalk::new(k as u64),
                ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                n,
                k,
                sparse,
            );
            t.row([
                k.to_string(),
                alg4.rounds.to_string(),
                alg4.trace.total_moves().to_string(),
                dfs.rounds.to_string(),
                dfs.trace.total_moves().to_string(),
                walk.rounds.to_string(),
                walk.trace.total_moves().to_string(),
            ]);
            assert!(alg4.rounds <= dfs.rounds);
        }
        println!("{t}");
        println!();
    }
    println!(
        "result: Algorithm 4 wins rounds everywhere (its objective) at a\n\
         modest move bill. On dense graphs the random walk is competitive\n\
         (short cover time, many exits per node); on sparse cycles its\n\
         rounds and moves blow up with the quadratic cover time while\n\
         Algorithm 4 stays ≤ k. The group-walking DFS pays the most moves\n\
         everywhere — every unsettled robot retraces the whole DFS."
    );
}
