//! Extension experiment: total robot moves ("energy") per algorithm.
//!
//! The paper optimizes rounds and memory; total moves is the third
//! quantity a deployment cares about (battery). Sliding moves every robot
//! on every active path each round, so Algorithm 4 trades extra moves for
//! its round optimality; the DFS baseline moves the whole group along
//! every edge; the random walk wanders. Each cell aggregates several
//! seeded instances through `RunSummary` instead of trusting one graph.

use dispersion_bench::{banner, Table};
use dispersion_core::baselines::{LocalDfs, RandomWalk};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::stats::RunSummary;
use dispersion_engine::{Configuration, DispersionAlgorithm, ModelSpec, SimOutcome, Simulator};
use dispersion_graph::{generators, NodeId};

const SEEDS: u64 = 5;

fn run<A: DispersionAlgorithm>(
    alg: A,
    model: ModelSpec,
    n: usize,
    k: usize,
    sparse: bool,
    seed: u64,
) -> SimOutcome {
    let g = if sparse {
        generators::cycle(n).unwrap()
    } else {
        generators::random_connected(n, 0.15, seed).unwrap()
    };
    let mut sim = Simulator::builder(
        alg,
        StaticNetwork::new(g),
        model,
        Configuration::rooted(n, k, NodeId::new(0)),
    )
    .max_rounds(2_000_000)
    .build()
    .expect("k ≤ n");
    sim.run().expect("valid run")
}

fn summarize(mk: impl Fn(u64) -> SimOutcome) -> RunSummary {
    let outcomes: Vec<SimOutcome> = (0..SEEDS).map(mk).collect();
    let summary = RunSummary::collect(&outcomes);
    assert!(summary.all_dispersed);
    summary
}

fn main() {
    banner(
        "Moves",
        "total-moves accounting across algorithms (extension)",
        "rounds-vs-moves trade-off: Θ(k) rounds costs O(k²) moves worst case",
    );

    for (label, sparse) in [("dense random graphs", false), ("sparse cycles", true)] {
        println!("({label}, mean over {SEEDS} seeds)");
        let mut t = Table::new([
            "k",
            "alg4 rounds",
            "alg4 moves",
            "dfs rounds",
            "dfs moves",
            "walk rounds",
            "walk moves",
        ]);
        for k in [8usize, 16, 32] {
            let n = k + k / 2;
            let alg4 = summarize(|seed| {
                run(
                    DispersionDynamic::new(),
                    ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                    n,
                    k,
                    sparse,
                    seed,
                )
            });
            let dfs = summarize(|seed| {
                run(LocalDfs::new(), ModelSpec::LOCAL_WITH_NEIGHBORHOOD, n, k, sparse, seed)
            });
            let walk = summarize(|seed| {
                run(
                    RandomWalk::new(seed.wrapping_add(k as u64)),
                    ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
                    n,
                    k,
                    sparse,
                    seed,
                )
            });
            t.row([
                k.to_string(),
                format!("{:.1}", alg4.mean_rounds),
                format!("{:.1}", alg4.mean_moves),
                format!("{:.1}", dfs.mean_rounds),
                format!("{:.1}", dfs.mean_moves),
                format!("{:.1}", walk.mean_rounds),
                format!("{:.1}", walk.mean_moves),
            ]);
            assert!(alg4.mean_rounds <= dfs.mean_rounds);
        }
        println!("{t}");
        println!();
    }
    println!(
        "result: Algorithm 4 wins rounds everywhere (its objective) at a\n\
         modest move bill. On dense graphs the random walk is competitive\n\
         (short cover time, many exits per node); on sparse cycles its\n\
         rounds and moves blow up with the quadratic cover time while\n\
         Algorithm 4 stays ≤ k. The group-walking DFS pays the most moves\n\
         everywhere — every unsettled robot retraces the whole DFS."
    );
}
