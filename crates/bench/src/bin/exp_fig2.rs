//! Figure 2: the Theorem 3 dynamic tree — two stars joined at their
//! centres — audited round by round.
//!
//! The figure's properties: `T_{A_r}` spans the occupied nodes, `T_{B_r}`
//! the empty ones, the centres are joined, the diameter is 3, and only
//! the centre of `T_{B_r}` can be newly visited. We record every graph
//! the adversary produces during a full Algorithm 4 run and verify all
//! four properties per round.

use dispersion_bench::{banner, Table};
use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::StarPairAdversary;
use dispersion_engine::{Configuration, ModelSpec, Simulator, TracePolicy};
use dispersion_graph::{metrics, NodeId};

fn main() {
    banner(
        "F2",
        "Figure 2 / Theorem 3",
        "dynamic tree of diameter 3 in which at most one new node is visited per round",
    );

    let (n, k) = (16usize, 10usize);
    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        StarPairAdversary::new(n),
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        Configuration::rooted(n, k, NodeId::new(0)),
    )
    .trace(TracePolicy::RoundsAndGraphs)
    .build()
    .expect("k ≤ n");
    let out = sim.run().expect("valid run");
    assert!(out.dispersed);

    let graphs = out.trace.graphs.as_ref().expect("recording enabled");
    let mut t = Table::new([
        "round",
        "|A_r| (occupied)",
        "edges",
        "diameter",
        "tree?",
        "new nodes",
    ]);
    for (rec, g) in out.trace.records.iter().zip(graphs.iter()) {
        let is_tree = g.edge_count() == g.node_count() - 1;
        t.row([
            rec.round.to_string(),
            rec.occupied_before.to_string(),
            g.edge_count().to_string(),
            metrics::diameter(g).expect("connected").to_string(),
            is_tree.to_string(),
            rec.newly_occupied.to_string(),
        ]);
        assert!(is_tree, "Fig. 2 graphs are trees");
        assert!(metrics::diameter(g).unwrap() <= 3);
        assert_eq!(rec.newly_occupied, 1, "exactly one new node per round");
    }
    println!("{t}");
    println!();
    println!(
        "result: every round the adversary produced a tree of diameter ≤ 3\n\
         (two stars joined at the centres) and the algorithm — any\n\
         algorithm — could visit exactly one new node, so the run took\n\
         k − 1 = {} rounds: the Ω(k) lower bound with D̂ = O(1).",
        k - 1
    );
}
