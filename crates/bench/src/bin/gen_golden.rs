//! Regenerates the golden-trace fixtures under `tests/golden/`.
//!
//! Each fixture pins one (algorithm × adversary) pair to a fixed seed and
//! records the full observable outcome: dispersion flag, round count,
//! crash count, the final placement, and the per-round trace CSV. The
//! `golden_trace` integration test replays the same runs and asserts the
//! files match byte-for-byte — any engine change that alters observable
//! behavior fails the test instead of silently shifting results.
//!
//! Run from the workspace root:
//!
//! ```text
//! cargo run --release -p dispersion-bench --bin gen_golden
//! ```

use std::fs;
use std::path::Path;

use dispersion_bench::golden::{golden_cases, render_case};

fn main() {
    let dir = Path::new("tests/golden");
    fs::create_dir_all(dir).expect("create tests/golden");
    for case in golden_cases() {
        let rendered = render_case(&case);
        let path = dir.join(format!("{}.golden", case.name));
        fs::write(&path, rendered).expect("write golden file");
        println!("wrote {}", path.display());
    }
}
