//! Extension experiment: dispersion on dynamic rings — the setting of
//! the only prior dynamic-graph dispersion work (Agarwalla et al.,
//! *Deterministic dispersion of mobile robots in dynamic rings*, ICDCN
//! 2018, cited as \[1\]).
//!
//! The paper generalizes from rings to arbitrary dynamic graphs; this
//! experiment closes the loop by running Algorithm 4 back on rings (full
//! and one-edge-missing) and confirming the general O(k) bound covers the
//! special case.

use dispersion_bench::{banner, run_alg4_rooted, Table};
use dispersion_engine::adversary::DynamicRingNetwork;

fn main() {
    banner(
        "Rings",
        "the dynamic-ring setting of related work [1] (extension)",
        "Algorithm 4's O(k) bound specializes to dynamic rings",
    );

    let mut t = Table::new([
        "variant",
        "n",
        "k",
        "rounds",
        "rounds/k",
        "memory bits",
    ]);
    for k in [4usize, 8, 16, 32] {
        let n = k + 3;
        for (variant, drop_edge) in [("full ring", false), ("one edge missing", true)] {
            let out = run_alg4_rooted(DynamicRingNetwork::new(n, drop_edge, k as u64), n, k);
            assert!(out.dispersed);
            assert!(out.rounds <= k as u64);
            t.row([
                variant.to_string(),
                n.to_string(),
                k.to_string(),
                out.rounds.to_string(),
                format!("{:.2}", out.rounds as f64 / k as f64),
                out.max_memory_bits().to_string(),
            ]);
        }
    }
    println!("{t}");
    println!();
    println!(
        "result: rounds ≤ k on every dynamic-ring variant — the paper's\n\
         arbitrary-graph algorithm subsumes the prior ring-only setting\n\
         with the same Θ(log k) memory."
    );
}
