//! The adversary gauntlet: Algorithm 4 versus every dynamic network in
//! the crate, plus the two impossibility traps against their victims.
//!
//! ```sh
//! cargo run --example adversary_gauntlet
//! ```

use dispersion_core::{impossibility, DispersionDynamic};
use dispersion_engine::adversary::{
    DynamicNetwork, EdgeChurnNetwork, PeriodicNetwork, StarPairAdversary, StaticNetwork,
    TIntervalNetwork,
};
use dispersion_engine::{Configuration, ModelSpec, Simulator};
use dispersion_graph::{generators, NodeId};

fn challenge<N: DynamicNetwork>(name: &str, net: N, n: usize, k: usize) {
    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        net,
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        Configuration::rooted(n, k, NodeId::new(0)),
    )
    .build()
    .expect("k ≤ n");
    let out = sim.run().expect("valid run");
    println!(
        "  {name:<28} k={k:<3} rounds={:<4} (≤ k? {})  memory={} bits",
        out.rounds,
        if out.rounds <= k as u64 { "yes" } else { "NO" },
        out.max_memory_bits()
    );
    assert!(out.dispersed);
}

fn main() {
    let (n, k) = (24usize, 16usize);
    println!("=== Algorithm 4 vs dynamic networks (global comm + 1-NK) ===");
    challenge(
        "static random graph",
        StaticNetwork::new(generators::random_connected(n, 0.15, 1).unwrap()),
        n,
        k,
    );
    challenge(
        "periodic path/star/cycle",
        PeriodicNetwork::new(vec![
            generators::path(n).unwrap(),
            generators::star(n).unwrap(),
            generators::cycle(n).unwrap(),
        ]),
        n,
        k,
    );
    challenge("oblivious edge churn", EdgeChurnNetwork::new(n, 0.12, 9), n, k);
    challenge("T-interval (T = 4)", TIntervalNetwork::new(n, 4, 0.1, 5), n, k);
    challenge(
        "star-pair (Thm 3, adaptive)",
        StarPairAdversary::new(n),
        n,
        k,
    );
    println!();

    println!("=== the impossibility traps (Theorems 1 & 2) ===");
    let t1 = impossibility::run_path_trap(12, 7, 300).expect("valid run");
    println!(
        "  path-trap vs greedy-local    k={:<3} rounds={:<4} dispersed={} (Thm 1 says never)",
        t1.k, t1.rounds, t1.dispersed
    );
    assert!(!t1.dispersed);
    let t2 = impossibility::run_clique_trap(12, 7, 300).expect("valid run");
    println!(
        "  clique-trap vs blind-global  k={:<3} rounds={:<4} new-nodes={} (Thm 2 says zero)",
        t2.k, t2.rounds, t2.total_new_nodes
    );
    assert!(!t2.dispersed);
    assert_eq!(t2.total_new_nodes, 0);
    println!();
    println!("every bound held.");
}
