//! Quickstart: disperse 12 robots on a 20-node dynamic graph.
//!
//! ```sh
//! cargo run --example quickstart
//! ```
//!
//! The topology is rebuilt by an oblivious churn adversary every round;
//! Algorithm 4 (global communication + 1-neighborhood knowledge) finishes
//! within k rounds with ⌈log₂ k⌉ bits of persistent memory per robot.

use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::EdgeChurnNetwork;
use dispersion_engine::{Configuration, ModelSpec, Simulator};
use dispersion_graph::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k) = (20usize, 12usize);
    println!("dispersing k={k} robots on an n={n}-node dynamic graph");
    println!("model: {}", ModelSpec::GLOBAL_WITH_NEIGHBORHOOD);
    println!();

    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        EdgeChurnNetwork::new(n, 0.15, 7),
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        Configuration::rooted(n, k, NodeId::new(0)),
    )
    .build()?;
    let outcome = sim.run()?;

    println!(
        "{:>5}  {:>9}  {:>8}  {:>5}",
        "round", "occupied", "new", "moves"
    );
    for rec in &outcome.trace.records {
        println!(
            "{:>5}  {:>4} → {:>2}  {:>8}  {:>5}",
            rec.round, rec.occupied_before, rec.occupied_after, rec.newly_occupied, rec.moves
        );
    }
    println!();
    println!(
        "dispersed: {} in {} rounds (bound: k = {k})",
        outcome.dispersed, outcome.rounds
    );
    println!(
        "persistent memory per robot: {} bits (⌈log₂ {k}⌉ = {})",
        outcome.max_memory_bits(),
        dispersion_engine::RobotId::bits_for_population(k)
    );
    println!("final placement:");
    for (robot, node) in outcome.final_config.iter() {
        println!("  robot {robot:>4} → node {node}");
    }
    Ok(())
}
