//! The Section V / Figs. 3–4 running example, printed end to end:
//! components → spanning trees → disjoint paths → one round of sliding.
//!
//! ```sh
//! cargo run --example worked_example
//! ```

use dispersion_core::{worked_example, DispersionDynamic};
use dispersion_engine::adversary::StaticNetwork;
use dispersion_engine::{ModelSpec, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let ex = worked_example::build();
    println!(
        "G_r: {} nodes, {} edges; {} robots on {} nodes",
        ex.graph.node_count(),
        ex.graph.edge_count(),
        ex.config.robot_count(),
        ex.config.occupied_count()
    );
    println!();

    println!("=== Fig. 3(b): connected components (Algorithm 1) ===");
    for (label, comp) in [("green CG¹", ex.green()), ("red   CG²", ex.red())] {
        let robots: Vec<u32> = comp
            .iter()
            .flat_map(|n| n.robots.iter().map(|r| r.get()))
            .collect();
        println!("{label}: {} nodes, robots {robots:?}", comp.len());
        for node in comp.iter() {
            let nbrs: Vec<String> = node
                .neighbors
                .iter()
                .map(|(p, id)| format!("{id}@{p}"))
                .collect();
            println!(
                "    node {:<4} count={} degree={} occupied-neighbors=[{}]{}",
                node.id.to_string(),
                node.count,
                node.degree,
                nbrs.join(", "),
                if node.has_empty_neighbor() {
                    "  (borders empty)"
                } else {
                    ""
                }
            );
        }
    }
    println!();

    println!("=== Fig. 3(c): component spanning trees (Algorithm 2) ===");
    for (label, comp) in [("green ST¹", ex.green()), ("red   ST²", ex.red())] {
        let tree = ex.tree_of(&comp);
        println!("{label}: root {} (smallest multiplicity node)", tree.root());
        for id in tree.preorder() {
            match tree.parent(*id) {
                Some(p) => println!("    {id} ← parent {p}"),
                None => println!("    {id} (root)"),
            }
        }
    }
    println!();

    println!("=== Fig. 4(a): disjoint root paths (Algorithm 3) ===");
    for (label, comp) in [("green", ex.green()), ("red", ex.red())] {
        let tree = ex.tree_of(&comp);
        let paths = ex.paths_of(&comp, &tree);
        println!("{label}: {} path(s)", paths.len());
        for p in paths.iter() {
            let chain: Vec<String> = p.nodes().iter().map(|n| n.to_string()).collect();
            println!("    {}", chain.join(" → "));
        }
    }
    println!();

    println!("=== Fig. 4(b): one round of sliding (Algorithm 4) ===");
    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        StaticNetwork::new(ex.graph.clone()),
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        ex.config.clone(),
    )
    .max_rounds(1)
    .build()?;
    let out = sim.run()?;
    let rec = &out.trace.records[0];
    println!(
        "occupied nodes {} → {}; {} previously-empty node(s) received a robot",
        rec.occupied_before, rec.occupied_after, rec.newly_occupied
    );
    println!();
    println!("placements after the slide:");
    for (robot, node) in out.final_config.iter() {
        let before = ex.config.node_of(robot).expect("same fleet");
        let marker = if before != node { "  ← slid" } else { "" };
        println!("  robot {robot:>4}: {before} → {node}{marker}");
    }
    Ok(())
}
