//! Crash-fault dispersion (Section VII): robots vanish mid-run and the
//! survivors still finish, in O(k − f) rounds.
//!
//! ```sh
//! cargo run --example crash_faults
//! ```

use dispersion_core::faulty::run_with_faults;
use dispersion_engine::adversary::StarPairAdversary;
use dispersion_engine::{
    Configuration, CrashEvent, CrashPhase, FaultPlan, RobotId, SimOptions,
};
use dispersion_graph::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (n, k) = (20usize, 14usize);
    println!("FAULTYDISPERSION: k = {k} robots, worst-case adversary, crashes mid-run");
    println!();

    // Three robots crash at different times, in both crash phases.
    let plan = FaultPlan::from_events([
        CrashEvent {
            robot: RobotId::new(14),
            round: 2,
            phase: CrashPhase::BeforeCommunicate,
        },
        CrashEvent {
            robot: RobotId::new(7),
            round: 4,
            phase: CrashPhase::AfterCompute,
        },
        CrashEvent {
            robot: RobotId::new(3),
            round: 6,
            phase: CrashPhase::BeforeCommunicate,
        },
    ]);
    println!("fault plan:");
    for e in plan.events() {
        println!("  round {:>2}: {} crashes ({:?})", e.round, e.robot, e.phase);
    }
    println!();

    let outcome = run_with_faults(
        StarPairAdversary::new(n),
        Configuration::rooted(n, k, NodeId::new(0)),
        plan,
        SimOptions::default(),
    )?;

    for rec in &outcome.trace.records {
        let crash_note = if rec.crashed.is_empty() {
            String::new()
        } else {
            format!("  ⚡ crashed: {:?}", rec.crashed)
        };
        println!(
            "round {:>2}: occupied {:>2} → {:>2}{crash_note}",
            rec.round, rec.occupied_before, rec.occupied_after
        );
    }
    println!();
    let f = outcome.crashes;
    println!(
        "dispersed: {} — {} survivors on distinct nodes after {} rounds \
         (Theorem 5 bound: O(k − f) = O({}))",
        outcome.dispersed,
        outcome.final_config.robot_count(),
        outcome.rounds,
        k - f
    );
    Ok(())
}
