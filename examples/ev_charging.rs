//! The paper's motivating application: relocating self-driving electric
//! cars (robots) to charging stations (nodes).
//!
//! ```sh
//! cargo run --example ev_charging
//! ```
//!
//! A fleet of cars ends the day clustered at a few depots of a city whose
//! road availability changes every round (lane closures, congestion —
//! modeled as 1-interval connected dynamics). Each charging station can
//! serve one car, so the fleet must reach a dispersion configuration.
//! Cars communicate over a cellular link (global communication) and sense
//! whether adjacent stations are occupied (1-neighborhood knowledge) —
//! exactly the model in which the paper proves dispersion possible.

use dispersion_core::DispersionDynamic;
use dispersion_engine::adversary::TIntervalNetwork;
use dispersion_engine::{Configuration, ModelSpec, RobotId, Simulator};
use dispersion_graph::NodeId;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 30 charging stations; 22 cars parked at three depots.
    let n = 30usize;
    let fleet = 22usize;
    let depots = [NodeId::new(0), NodeId::new(11), NodeId::new(23)];
    let placements = (1..=fleet as u32).map(|i| {
        (
            RobotId::new(i),
            depots[(i as usize - 1) % depots.len()],
        )
    });
    let initial = Configuration::from_pairs(n, placements);
    println!("EV fleet rebalancing");
    println!("  stations : {n}");
    println!("  cars     : {fleet}, clustered at depots {:?}", depots);
    println!("  roads    : T-interval connected dynamics (T = 3)");
    println!();

    // Roads: a stable backbone persists for 3-round windows while side
    // streets open and close every round.
    let roads = TIntervalNetwork::new(n, 3, 0.08, 42);
    let mut sim = Simulator::builder(
        DispersionDynamic::new(),
        roads,
        ModelSpec::GLOBAL_WITH_NEIGHBORHOOD,
        initial,
    )
    .build()?;
    let outcome = sim.run()?;

    for rec in &outcome.trace.records {
        println!(
            "round {:>2}: {:>2} stations charging, {:>2} cars moved",
            rec.round, rec.occupied_after, rec.moves
        );
    }
    println!();
    assert!(outcome.dispersed, "every car must find a free station");
    println!(
        "all {fleet} cars reached distinct stations in {} rounds (bound: {fleet})",
        outcome.rounds
    );
    println!(
        "onboard state per car: {} bits",
        outcome.max_memory_bits()
    );
    Ok(())
}
